// Package sched models the operating-system thread scheduler under the
// simulated JVM: per-core run queues with weighted virtual-runtime fair
// scheduling (CFS-like), time-slice preemption, idle work stealing, and
// migration/NUMA placement costs.
//
// Threads do not run code; the VM drives each thread as a sequence of CPU
// bursts ("segments") via Submit. The scheduler decides when and where
// each segment executes and calls the segment's completion callback at the
// virtual time it finishes. Blocking (locks, safepoints, empty work
// queues) happens between segments, which mirrors how a JVM thread reaches
// a safepoint or parks: at well-defined poll points, not at arbitrary
// instructions.
//
// The package also implements the paper's first future-work proposal
// (§IV): phase-biased scheduling. With PhaseBias configured, worker
// threads are partitioned into groups and only one group is eligible to
// run at a time, rotating every PhaseLength. Spacing worker threads apart
// in time reduces allocation interleaving — the "lifetime interference"
// the paper blames for prolonged object lifespans.
package sched

import (
	"fmt"

	"javasim/internal/machine"
	"javasim/internal/sim"
)

// State is a thread's scheduling state.
type State uint8

const (
	// Idle threads have no pending segment; the VM has not submitted work.
	Idle State = iota
	// Ready threads wait in a run queue for a core.
	Ready
	// Running threads occupy a core.
	Running
	// Blocked threads are parked (lock wait, safepoint, I/O) and hold no
	// pending segment.
	Blocked
	// Terminated threads have finished and can never run again.
	Terminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Terminated:
		return "terminated"
	default:
		return "invalid"
	}
}

// DefaultWeight is the scheduling weight of an ordinary mutator thread.
// Lower weights receive proportionally less CPU (vruntime grows faster).
const DefaultWeight = 1024

// Thread is one schedulable entity.
type Thread struct {
	// ID is the dense thread index assigned at creation.
	ID int
	// Name labels the thread in reports ("worker-3", "jit-compiler").
	Name string
	// Weight is the fair-share weight; DefaultWeight for mutators.
	Weight int
	// MemoryIntensity in [0,1] scales how strongly NUMA-remote placement
	// slows this thread: 0 = pure compute, 1 = every cycle memory-bound.
	MemoryIntensity float64
	// Group is the phase-bias group, or NoGroup for always-eligible
	// threads (helpers, GC).
	Group int

	state      State
	core       int // core currently or last occupied; -1 before first run
	coreIdx    int // scheduler index of that core; -1 before first run
	homeSocket int // socket of first dispatch; NUMA home of its data

	vruntime sim.Time

	// Accounting, exposed through getters.
	cpuTime     sim.Time // effective core occupancy
	readyWait   sim.Time // total time spent Ready (runnable, no core)
	blockedTime sim.Time
	stateSince  sim.Time
	dispatches  int64
	migrations  int64
	preemptions int64

	// Current segment.
	remainingBase sim.Time // requested CPU time left, base units
	done          func()
	startedAt     sim.Time // dispatch time of current slice
	penalty1024   int64    // effective-time multiplier at current placement
	sliceEvent    *sim.Event
	continued     bool // set when done() resubmits in-place
}

// NoGroup marks threads exempt from phase-bias gating.
const NoGroup = -1

// State returns the current scheduling state.
func (t *Thread) State() State { return t.state }

// CPUTime returns the total effective core time consumed.
func (t *Thread) CPUTime() sim.Time { return t.cpuTime }

// ReadyWait returns the total time the thread sat runnable without a core.
// The paper's §III-B links this suspension time to prolonged object
// lifespans.
func (t *Thread) ReadyWait() sim.Time { return t.readyWait }

// BlockedTime returns the total time parked.
func (t *Thread) BlockedTime() sim.Time { return t.blockedTime }

// Dispatches returns how many times the thread was placed on a core.
func (t *Thread) Dispatches() int64 { return t.dispatches }

// Migrations returns how many dispatches landed on a different core than
// the previous one.
func (t *Thread) Migrations() int64 { return t.migrations }

// Preemptions returns how many times a time-slice expiry descheduled the
// thread with work remaining.
func (t *Thread) Preemptions() int64 { return t.preemptions }

// Core returns the core the thread last ran on, or -1.
func (t *Thread) Core() int { return t.core }

// HomeSocket returns the socket of the thread's first dispatch — the NUMA
// home of its data — or -1 before the first run.
func (t *Thread) HomeSocket() int { return t.homeSocket }

// PhaseBias configures phase-biased scheduling (future work (a)).
type PhaseBias struct {
	// Groups is the number of rotation groups; <= 1 disables biasing.
	Groups int
	// PhaseLength is how long each group stays eligible.
	PhaseLength sim.Time
}

// Config parameterizes the scheduler.
type Config struct {
	// Quantum is the preemption time slice. Zero means 1ms.
	Quantum sim.Time
	// Steal enables idle work stealing across run queues.
	Steal bool
	// Bias enables phase-biased scheduling when Bias.Groups > 1.
	Bias PhaseBias
	// Placement selects the run-queue placement discipline by registry
	// name ("affinity", "round-robin", "least-loaded", or a user
	// registration); empty means affinity.
	Placement string
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Quantum == 0 {
		c.Quantum = sim.Millisecond
	}
	return c
}

type coreState struct {
	id      int
	idx     int // index within Scheduler.cores
	sched   *Scheduler
	current *Thread
	queue   []*Thread
}

// OnEvent fires the core's slice timer. coreState implements sim.Callback
// so slice events carry a pre-bound receiver instead of a fresh closure —
// with the kernel's event pool, arming a slice allocates nothing.
func (c *coreState) OnEvent() { c.sched.tick(c.idx) }

// Scheduler multiplexes threads onto the machine's enabled cores.
type Scheduler struct {
	sim     *sim.Simulator
	machine *machine.Machine
	cfg     Config

	cores   []coreState // one per enabled core
	threads []*Thread
	place   Placement

	// CMT pipeline sharing: nil on machines with one hardware thread per
	// core. siblings[i] lists the scheduler core indices (including i)
	// whose units issue through the same physical pipeline as core i;
	// issueWidth is how many of them can run at full speed concurrently.
	siblings   [][]int
	issueWidth int

	phaseWake []*sim.Event // per core, pending phase-boundary wakeup
	idleStart []sim.Time   // per core, when it last went idle; -1 if busy
	idleTotal []sim.Time

	// gateOverride, when set and returning true, suspends phase-bias
	// gating so every thread can be scheduled. The VM points this at its
	// safepoint-pending flag: a stop-the-world request must be able to
	// reach threads parked behind an inactive phase group, or
	// time-to-safepoint balloons to the phase length.
	gateOverride func() bool
}

// New builds a scheduler over the machine's currently enabled cores. An
// unknown Config.Placement name panics — validate with KnownPlacement (or
// resolve through NewPlacement) before constructing.
func New(s *sim.Simulator, m *machine.Machine, cfg Config) *Scheduler {
	cfg = cfg.WithDefaults()
	enabled := m.EnabledCores()
	if len(enabled) == 0 {
		panic("sched: no enabled cores")
	}
	place, err := NewPlacement(cfg.Placement)
	if err != nil {
		panic(err.Error())
	}
	sc := &Scheduler{
		sim: s, machine: m, cfg: cfg, place: place,
		cores:     make([]coreState, len(enabled)),
		phaseWake: make([]*sim.Event, len(enabled)),
		idleStart: make([]sim.Time, len(enabled)),
		idleTotal: make([]sim.Time, len(enabled)),
	}
	for i, c := range enabled {
		sc.cores[i] = coreState{id: c, idx: i, sched: sc}
		sc.idleStart[i] = 0
	}
	if cfg.Bias.Groups > 1 && cfg.Bias.PhaseLength <= 0 {
		panic("sched: PhaseBias.PhaseLength must be positive")
	}
	if m.ThreadsPerCore() > 1 {
		sc.issueWidth = m.IssueWidth()
		group := make(map[int][]int)
		for i, c := range enabled {
			p := m.PipelineOf(c)
			group[p] = append(group[p], i)
		}
		sc.siblings = make([][]int, len(enabled))
		for i, c := range enabled {
			sc.siblings[i] = group[m.PipelineOf(c)]
		}
	}
	return sc
}

// NumCores returns the number of cores the scheduler multiplexes.
func (sc *Scheduler) NumCores() int { return len(sc.cores) }

// NewThread registers a thread. Group defaults to NoGroup (never gated).
func (sc *Scheduler) NewThread(name string, weight int) *Thread {
	if weight <= 0 {
		weight = DefaultWeight
	}
	t := &Thread{
		ID: len(sc.threads), Name: name, Weight: weight,
		Group: NoGroup, core: -1, coreIdx: -1, homeSocket: -1,
		stateSince: sc.sim.Now(),
	}
	sc.threads = append(sc.threads, t)
	return t
}

// Threads returns all registered threads in creation order.
func (sc *Scheduler) Threads() []*Thread { return sc.threads }

// setState moves t to state s, folding elapsed time into the accounting
// bucket of the state being left.
func (sc *Scheduler) setState(t *Thread, s State) {
	now := sc.sim.Now()
	elapsed := now - t.stateSince
	switch t.state {
	case Ready:
		t.readyWait += elapsed
	case Blocked:
		t.blockedTime += elapsed
	}
	t.state = s
	t.stateSince = now
}

// Submit requests that thread t consume d nanoseconds of CPU and then run
// done. It is legal when t is Idle or Blocked, or from inside t's own done
// callback (a continuation, which keeps the core without requeueing).
// Submitting for a Ready, Running, or Terminated thread panics: the VM
// must never double-schedule a thread.
func (sc *Scheduler) Submit(t *Thread, d sim.Time, done func()) {
	if d < 0 {
		panic(fmt.Sprintf("sched: negative segment %v for %s", d, t.Name))
	}
	if done == nil {
		panic("sched: nil done callback")
	}
	switch t.state {
	case Running:
		// Legal only as a continuation from t's own done callback, which
		// is the only code that can observe t Running with no slice event.
		if t.sliceEvent != nil || t.done != nil {
			panic(fmt.Sprintf("sched: Submit for running thread %s outside its done callback", t.Name))
		}
		t.remainingBase = d
		t.done = done
		t.continued = true
		return
	case Idle, Blocked:
		t.remainingBase = d
		t.done = done
		sc.enqueue(t)
	default:
		panic(fmt.Sprintf("sched: Submit for %s thread %s", t.state, t.Name))
	}
}

// Block parks a thread and labels its wait as blocking for the accounting
// split. It is legal for an Idle thread, or from inside the thread's own
// done callback (the usual case: the segment ended at a lock or safepoint
// poll and the thread must wait instead of running on — the core is
// released when the callback returns).
func (sc *Scheduler) Block(t *Thread) {
	switch {
	case t.state == Idle:
		sc.setState(t, Blocked)
	case t.state == Running && t.sliceEvent == nil && t.done == nil && !t.continued:
		sc.setState(t, Blocked)
	default:
		panic(fmt.Sprintf("sched: Block on %s thread %s", t.state, t.Name))
	}
}

// Unblock returns a Blocked thread to Idle without scheduling work.
func (sc *Scheduler) Unblock(t *Thread) {
	if t.state != Blocked {
		panic(fmt.Sprintf("sched: Unblock on %s thread %s", t.state, t.Name))
	}
	sc.setState(t, Idle)
}

// Terminate retires a thread permanently. It is legal for an off-CPU
// thread or from inside the thread's own done callback after its final
// segment.
func (sc *Scheduler) Terminate(t *Thread) {
	switch {
	case t.state == Idle || t.state == Blocked:
		sc.setState(t, Terminated)
	case t.state == Running && t.sliceEvent == nil && t.done == nil && !t.continued:
		sc.setState(t, Terminated)
	default:
		panic(fmt.Sprintf("sched: Terminate on %s thread %s", t.state, t.Name))
	}
}

// activeGroup returns the phase group currently eligible to run. Phases
// are derived from the clock rather than from periodic events so that an
// otherwise-finished simulation drains instead of rotating forever.
func (sc *Scheduler) activeGroup() int {
	return int((sc.sim.Now() / sc.cfg.Bias.PhaseLength) % sim.Time(sc.cfg.Bias.Groups))
}

// SetGateOverride installs a predicate that, while true, suspends
// phase-bias gating (see gateOverride).
func (sc *Scheduler) SetGateOverride(f func() bool) { sc.gateOverride = f }

// eligible reports whether phase biasing permits t to run now.
func (sc *Scheduler) eligible(t *Thread) bool {
	if sc.cfg.Bias.Groups <= 1 || t.Group == NoGroup {
		return true
	}
	if sc.gateOverride != nil && sc.gateOverride() {
		return true
	}
	return t.Group%sc.cfg.Bias.Groups == sc.activeGroup()
}

// armPhaseWake schedules a dispatch retry on core idx at the next phase
// boundary, when gated threads may become eligible. At most one wakeup is
// pending per core.
func (sc *Scheduler) armPhaseWake(idx int) {
	if sc.cfg.Bias.Groups <= 1 || sc.phaseWake[idx] != nil {
		return
	}
	boundary := (sc.sim.Now()/sc.cfg.Bias.PhaseLength + 1) * sc.cfg.Bias.PhaseLength
	sc.phaseWake[idx] = sc.sim.At(boundary, func() {
		sc.phaseWake[idx] = nil
		if sc.cores[idx].current == nil {
			sc.dispatch(idx)
		}
	})
}

// gatedCount returns the number of Ready threads currently ineligible due
// to phase biasing, across all queues.
func (sc *Scheduler) gatedCount() int {
	if sc.cfg.Bias.Groups <= 1 {
		return 0
	}
	n := 0
	for i := range sc.cores {
		for _, t := range sc.cores[i].queue {
			if !sc.eligible(t) {
				n++
			}
		}
	}
	return n
}

// enqueue places t in the run queue the placement picks and dispatches if
// that core is free.
func (sc *Scheduler) enqueue(t *Thread) {
	sc.setState(t, Ready)
	target := sc.place.PickCore(sc, t)
	if target < 0 || target >= len(sc.cores) {
		panic(fmt.Sprintf("sched: placement %q picked core %d of %d", sc.place.Name(), target, len(sc.cores)))
	}
	sc.cores[target].queue = append(sc.cores[target].queue, t)
	if sc.cores[target].current == nil {
		sc.dispatch(target)
	}
}

// PlacementName returns the registry name of the scheduler's placement.
func (sc *Scheduler) PlacementName() string { return sc.place.Name() }

// CoreLoad returns the number of threads resident on scheduler core idx:
// its queue length plus the running thread, if any. Placement
// implementations use it to compare queues.
func (sc *Scheduler) CoreLoad(idx int) int {
	c := &sc.cores[idx]
	load := len(c.queue)
	if c.current != nil {
		load++
	}
	return load
}

// SocketOfCore returns the machine socket of scheduler core idx.
func (sc *Scheduler) SocketOfCore(idx int) int {
	return sc.machine.SocketOf(sc.cores[idx].id)
}

func (sc *Scheduler) coreIndex(coreID int) (int, bool) {
	for i := range sc.cores {
		if sc.cores[i].id == coreID {
			return i, true
		}
	}
	return 0, false
}

// pickNext removes and returns the next thread for core idx: the eligible
// minimum-vruntime thread in its own queue, else (with stealing) the
// eligible min-vruntime thread from the longest other queue.
func (sc *Scheduler) pickNext(idx int) *Thread {
	if t := sc.takeMin(idx); t != nil {
		return t
	}
	if !sc.cfg.Steal {
		return nil
	}
	victim, victimLen := -1, 0
	for i := range sc.cores {
		if i == idx {
			continue
		}
		if n := sc.eligibleCount(i); n > victimLen {
			victim, victimLen = i, n
		}
	}
	if victim < 0 {
		return nil
	}
	return sc.takeMin(victim)
}

func (sc *Scheduler) eligibleCount(idx int) int {
	n := 0
	for _, t := range sc.cores[idx].queue {
		if sc.eligible(t) {
			n++
		}
	}
	return n
}

// takeMin removes the eligible thread with minimum vruntime from queue
// idx, or returns nil.
func (sc *Scheduler) takeMin(idx int) *Thread {
	q := sc.cores[idx].queue
	best := -1
	for i, t := range q {
		if !sc.eligible(t) {
			continue
		}
		if best < 0 || t.vruntime < q[best].vruntime {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := q[best]
	sc.cores[idx].queue = append(q[:best], q[best+1:]...)
	return t
}

// dispatch places the next thread on core idx if one is available.
func (sc *Scheduler) dispatch(idx int) {
	c := &sc.cores[idx]
	if c.current != nil {
		return
	}
	t := sc.pickNext(idx)
	if t == nil {
		if sc.idleStart[idx] < 0 {
			sc.idleStart[idx] = sc.sim.Now()
		}
		if sc.gatedCount() > 0 {
			sc.armPhaseWake(idx)
		}
		return
	}
	if sc.idleStart[idx] >= 0 {
		sc.idleTotal[idx] += sc.sim.Now() - sc.idleStart[idx]
		sc.idleStart[idx] = -1
	}
	c.current = t
	migrated := t.core >= 0 && t.core != c.id
	if migrated {
		t.migrations++
	}
	t.core = c.id
	t.coreIdx = idx
	if t.homeSocket < 0 {
		t.homeSocket = sc.machine.SocketOf(c.id)
	}
	sc.setState(t, Running)
	t.dispatches++

	sc.setPenalty(t, c)
	if migrated {
		// Cache/TLB refill charged as extra effective time on this slice.
		t.remainingBase += sc.machine.Config().MigrationCost
	}
	t.startedAt = sc.sim.Now()
	slice := sc.effRemaining(t)
	if slice > sc.cfg.Quantum {
		slice = sc.cfg.Quantum
	}
	t.sliceEvent = sc.sim.ScheduleCall(slice, c)
}

func (sc *Scheduler) effRemaining(t *Thread) sim.Time {
	return sim.Time(int64(t.remainingBase) * t.penalty1024 / 1024)
}

// setPenalty computes t's effective-time multiplier at its current
// placement on core c: the NUMA-remote factor scaled by memory intensity,
// times the pipeline-sharing factor on CMT machines (busy sibling strands
// beyond the issue width divide the pipeline's throughput evenly). The
// penalty holds for one slice; re-arm points recompute it so sibling
// activity is sampled at slice granularity.
func (sc *Scheduler) setPenalty(t *Thread, c *coreState) {
	pen := 1.0
	if t.homeSocket >= 0 {
		pen = 1 + t.MemoryIntensity*(sc.machine.RemotePenalty(c.id, t.homeSocket)-1)
	}
	t.penalty1024 = int64(pen * 1024)
	if t.penalty1024 < 1024 {
		t.penalty1024 = 1024
	}
	if sc.siblings != nil {
		if busy := sc.busyOnPipeline(c.idx); busy > sc.issueWidth {
			t.penalty1024 = t.penalty1024 * int64(busy) / int64(sc.issueWidth)
		}
	}
}

// busyOnPipeline counts the units sharing core idx's pipeline (including
// idx itself) that are currently running a thread.
func (sc *Scheduler) busyOnPipeline(idx int) int {
	n := 0
	for _, s := range sc.siblings[idx] {
		if sc.cores[s].current != nil {
			n++
		}
	}
	return n
}

// CMT reports whether the machine exposes several hardware threads per
// pipeline, i.e. whether pipeline sharing is being modeled.
func (sc *Scheduler) CMT() bool { return sc.siblings != nil }

// PipelineLoad returns the total CoreLoad across every unit sharing core
// idx's pipeline. On non-CMT machines it equals CoreLoad(idx). Placements
// use it to spread threads across pipelines before doubling up strands.
func (sc *Scheduler) PipelineLoad(idx int) int {
	if sc.siblings == nil {
		return sc.CoreLoad(idx)
	}
	n := 0
	for _, s := range sc.siblings[idx] {
		n += sc.CoreLoad(s)
	}
	return n
}

// tick fires at slice expiry or segment completion for core idx.
func (sc *Scheduler) tick(idx int) {
	c := &sc.cores[idx]
	t := c.current
	t.sliceEvent = nil
	usedEff := sc.sim.Now() - t.startedAt
	t.cpuTime += usedEff
	t.vruntime += usedEff * sim.Time(DefaultWeight) / sim.Time(t.Weight)
	sc.machine.Core(c.id).BusyTime += usedEff
	// Ceiling division: rounding the base-time charge down would leave a
	// sliver of remainingBase that converts to zero effective time and
	// livelocks the core on 1ns slices.
	usedBase := sim.Time((int64(usedEff)*1024 + t.penalty1024 - 1) / t.penalty1024)
	t.remainingBase -= usedBase
	if t.remainingBase <= 0 {
		sc.completeSegment(t, idx)
		return
	}
	// Quantum expired with work left: preempt if someone eligible waits.
	if sc.eligibleCount(idx) > 0 {
		t.preemptions++
		c.current = nil
		sc.setState(t, Ready)
		c.queue = append(c.queue, t)
		sc.dispatch(idx)
		return
	}
	// Nobody waiting; run another slice in place. On CMT machines the
	// slice boundary re-samples sibling activity so the pipeline-sharing
	// penalty tracks strands that started or stopped since dispatch.
	if sc.siblings != nil {
		sc.setPenalty(t, c)
	}
	t.startedAt = sc.sim.Now()
	slice := sc.effRemaining(t)
	if slice > sc.cfg.Quantum {
		slice = sc.cfg.Quantum
	}
	t.sliceEvent = sc.sim.ScheduleCall(slice, c)
}

// completeSegment runs the done callback and either continues the thread
// in place (when done resubmitted) or frees the core.
func (sc *Scheduler) completeSegment(t *Thread, idx int) {
	c := &sc.cores[idx]
	t.remainingBase = 0
	done := t.done
	t.done = nil
	done()
	if t.continued {
		t.continued = false
		// A continuation keeps the core only while nobody eligible waits
		// on this core's queue; otherwise a CPU-bound thread chaining
		// segments would starve every other thread mapped here.
		if sc.eligibleCount(idx) > 0 {
			t.preemptions++
			c.current = nil
			sc.setState(t, Ready)
			c.queue = append(c.queue, t)
			sc.dispatch(idx)
			return
		}
		if sc.siblings != nil {
			sc.setPenalty(t, c)
		}
		t.startedAt = sc.sim.Now()
		slice := sc.effRemaining(t)
		if slice > sc.cfg.Quantum {
			slice = sc.cfg.Quantum
		}
		t.sliceEvent = sc.sim.ScheduleCall(slice, c)
		return
	}
	c.current = nil
	if t.state == Running {
		sc.setState(t, Idle)
	}
	sc.dispatch(idx)
}

// ContinuationBudget reports how much base CPU time thread t could
// consume, starting now, with zero externally observable interaction: no
// other simulation event firing, no run-queue activity on its core, and no
// placement-penalty arithmetic whose integer rounding depends on segment
// boundaries. The VM's op-run fusion uses it as the proof obligation for
// collapsing several interpreter ops into one summed segment — within the
// returned budget, a fused segment and the equivalent op-by-op segments
// are indistinguishable to every other component.
//
// The budget is nonzero only when t is on the continuation fast path
// (inside its own done callback, before resubmitting), it runs at unity
// placement penalty (base time == effective time, so slice rounding cannot
// diverge), and its core's run queue is empty (nothing to preempt it at a
// segment boundary). The window then extends to the kernel's next pending
// event, capped at max: no event means no new work, no stop-the-world
// request, and no wakeup can appear before the window closes, because
// every state change in the simulation is carried by an event.
//
// Note the boundary: a foreign event pending exactly at now+budget is
// safe. It was scheduled before the running callback, so it fires ahead of
// the fused segment's completion tick in both the fused and unfused
// executions — FIFO tie-breaking preserves creation order.
func (sc *Scheduler) ContinuationBudget(t *Thread, max sim.Time) sim.Time {
	if t.state != Running || t.sliceEvent != nil || t.done != nil || t.continued {
		return 0
	}
	// Weight must be the default for the same reason penalty must be
	// unity: vruntime accrues usedEff*DefaultWeight/Weight per segment
	// with integer division, so a fused segment (one floor of the sum)
	// and op-by-op segments (a sum of floors) would diverge otherwise.
	if t.penalty1024 != 1024 || t.Weight != DefaultWeight || t.coreIdx < 0 {
		return 0
	}
	c := &sc.cores[t.coreIdx]
	if c.current != t || len(c.queue) != 0 {
		return 0
	}
	next, ok := sc.sim.NextEventAt()
	if !ok {
		return max
	}
	if w := next - sc.sim.Now(); w < max {
		return w
	}
	return max
}

// Kick re-runs dispatch on every idle core. Callers use it after a change
// to external gating state (e.g. the VM's safepoint flag) that can make
// previously ineligible queued threads runnable — or gate them again, in
// which case dispatch re-arms the phase-boundary wakeup.
func (sc *Scheduler) Kick() {
	for i := range sc.cores {
		if sc.cores[i].current == nil {
			sc.dispatch(i)
		}
	}
}

// RunQueueLength returns the total number of Ready threads.
func (sc *Scheduler) RunQueueLength() int {
	n := 0
	for i := range sc.cores {
		n += len(sc.cores[i].queue)
	}
	return n
}

// IdleTime returns the accumulated idle time of scheduler core idx (not
// the machine core ID).
func (sc *Scheduler) IdleTime(idx int) sim.Time {
	t := sc.idleTotal[idx]
	if sc.idleStart[idx] >= 0 {
		t += sc.sim.Now() - sc.idleStart[idx]
	}
	return t
}

// Utilization returns the fraction of core-time spent busy since start.
func (sc *Scheduler) Utilization() float64 {
	now := sc.sim.Now()
	if now == 0 {
		return 0
	}
	var idle sim.Time
	for i := range sc.cores {
		idle += sc.IdleTime(i)
	}
	total := now * sim.Time(len(sc.cores))
	return 1 - float64(idle)/float64(total)
}
