package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"javasim/internal/core"
	"javasim/internal/store"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// testPlan is a tiny but representative plan: one scenario, two sweep
// points, one per-scenario output, one cross-scenario report.
const testPlan = `{
	"Name": "serve-test",
	"Seed": 7,
	"Scale": 0.02,
	"ThreadCounts": [2, 4],
	"Scenarios": [
		{"Name": "x", "Workload": "xalan", "Outputs": ["sweep"]}
	],
	"Reports": [
		{"Name": "verdict", "Kind": "classification"}
	]
}`

// testPlanPoints is how many simulations testPlan needs when nothing is
// cached.
const testPlanPoints = 2

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, baseURL, plan string) jobJSON {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// consumeSSE reads a job's event stream until its terminal frame and
// returns every event name seen plus the terminal job snapshot.
func consumeSSE(t *testing.T, baseURL, id string) ([]string, jobJSON) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/plans/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var (
		names    []string
		terminal jobJSON
		name     string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			names = append(names, name)
		case strings.HasPrefix(line, "data: ") && strings.HasPrefix(name, "job-"):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &terminal); err != nil {
				t.Fatalf("terminal frame: %v", err)
			}
		}
	}
	// The server closes the stream after the terminal frame, so reaching
	// EOF with a terminal snapshot is the success path.
	if terminal.ID == "" {
		t.Fatalf("stream ended without a terminal job-* frame (events: %v)", names)
	}
	return names, terminal
}

func artifactsText(t *testing.T, baseURL, id string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/plans/" + id + "/artifacts?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifacts: status %d: %s", resp.StatusCode, body)
	}
	return string(body)
}

func getStats(t *testing.T, baseURL string) statsJSON {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// renderCLI renders what cmd/javasim -plan would print for a plan — the
// byte-for-byte reference for the text artifacts endpoint.
func renderCLI(t *testing.T, plan string) string {
	t.Helper()
	p, err := core.LoadPlan(strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewEngine().RunPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, tb := range pr.Tables() {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		tb.WriteASCII(&buf)
	}
	return buf.String()
}

func TestServeEndToEnd(t *testing.T) {
	eng := core.NewEngine()
	_, ts := newTestServer(t, Options{Engine: eng})

	j := submit(t, ts.URL, testPlan)
	if j.State != StateRunning || j.Plan != "serve-test" {
		t.Fatalf("submitted job: %+v", j)
	}

	names, terminal := consumeSSE(t, ts.URL, j.ID)
	if terminal.State != StateDone {
		t.Fatalf("terminal state %q (error %q)", terminal.State, terminal.Error)
	}
	if terminal.Simulated != testPlanPoints {
		t.Fatalf("first run simulated %d points, want %d", terminal.Simulated, testPlanPoints)
	}
	want := map[string]bool{"run-started": false, "run-finished": false, "sweep-point-done": false,
		"sweep-done": false, "scenario-done": false, "artifact-rendered": false, "plan-done": false,
		"job-done": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("event %q never streamed (got %v)", n, names)
		}
	}

	if got, wantText := artifactsText(t, ts.URL, j.ID), renderCLI(t, testPlan); got != wantText {
		t.Errorf("text artifacts diverge from CLI rendering:\n--- daemon ---\n%s\n--- cli ---\n%s", got, wantText)
	}

	// Second submission of the identical plan: everything is memoized, so
	// zero simulations and only cached events.
	missesBefore := eng.CacheStats().Misses
	j2 := submit(t, ts.URL, testPlan)
	_, terminal2 := consumeSSE(t, ts.URL, j2.ID)
	if terminal2.State != StateDone {
		t.Fatalf("second run: %+v", terminal2)
	}
	if terminal2.Simulated != 0 {
		t.Errorf("second run simulated %d points, want 0", terminal2.Simulated)
	}
	if terminal2.Cached != testPlanPoints {
		t.Errorf("second run cached %d points, want %d", terminal2.Cached, testPlanPoints)
	}
	if d := eng.CacheStats().Misses - missesBefore; d != 0 {
		t.Errorf("second run cost %d engine misses, want 0", d)
	}

	// JSON artifacts carry every table.
	resp, err := http.Get(ts.URL + "/v1/plans/" + j.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var art struct {
		Plan   string      `json:"plan"`
		Tables []tableJSON `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	if art.Plan != "serve-test" || len(art.Tables) != 2 {
		t.Errorf("json artifacts: plan %q, %d tables", art.Plan, len(art.Tables))
	}

	st := getStats(t, ts.URL)
	if st.Jobs[StateDone] != 2 || st.Engine.Misses != missesBefore {
		t.Errorf("stats after both runs: %+v", st)
	}
}

func TestServeRestartOverSharedStore(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := core.NewEngine(core.WithDiskStore(st1))
	srv1, ts1 := newTestServer(t, Options{Engine: eng1, Store: st1})
	j := submit(t, ts1.URL, testPlan)
	if _, terminal := consumeSSE(t, ts1.URL, j.ID); terminal.State != StateDone {
		t.Fatalf("first daemon run: %+v", terminal)
	}
	text1 := artifactsText(t, ts1.URL, j.ID)
	// Graceful shutdown flushes the store before the daemon exits.
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new engine and server over the same directory.
	// Every sweep point must come from disk — zero simulations.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := core.NewEngine(core.WithDiskStore(st2))
	_, ts2 := newTestServer(t, Options{Engine: eng2, Store: st2})
	j2 := submit(t, ts2.URL, testPlan)
	_, terminal := consumeSSE(t, ts2.URL, j2.ID)
	if terminal.State != StateDone {
		t.Fatalf("second daemon run: %+v", terminal)
	}
	if terminal.Simulated != 0 {
		t.Errorf("after restart, %d points simulated, want 0 (all from disk)", terminal.Simulated)
	}
	cs := eng2.CacheStats()
	if cs.Misses != 0 || cs.DiskHits == 0 {
		t.Errorf("after restart: CacheStats = %+v, want Misses 0 and DiskHits > 0", cs)
	}
	if text2 := artifactsText(t, ts2.URL, j2.ID); text2 != text1 {
		t.Errorf("artifacts served from the disk store diverge from the original run")
	}
	stats := getStats(t, ts2.URL)
	if stats.Store == nil || stats.Store.Hits == 0 || stats.Store.Entries != testPlanPoints {
		t.Errorf("store stats after restart: %+v", stats.Store)
	}
}

func TestServeCancel(t *testing.T) {
	// Full-scale h2 at 16 threads runs long enough to cancel reliably.
	const slowPlan = `{
		"Name": "slow",
		"Scenarios": [{"Name": "h", "Workload": "h2", "ThreadCounts": [16], "Repeats": 60}]
	}`
	_, ts := newTestServer(t, Options{Engine: core.NewEngine()})
	j := submit(t, ts.URL, slowPlan)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("after DELETE: state %q, want %q", got.State, StateCanceled)
	}
	// Artifacts of a canceled job are a 409, not a 500.
	aresp, err := http.Get(ts.URL + "/v1/plans/" + j.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusConflict {
		t.Errorf("canceled job artifacts: status %d, want 409", aresp.StatusCode)
	}
}

func TestServeDrainingRejectsSubmissions(t *testing.T) {
	srv, ts := newTestServer(t, Options{Engine: core.NewEngine()})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/plans", "application/json", strings.NewReader(testPlan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
	// Health keeps answering, reporting the drain.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || !h.Draining {
		t.Errorf("healthz while draining: %+v", h)
	}
}

func TestServeShutdownDeadlineCancelsJobs(t *testing.T) {
	const slowPlan = `{
		"Name": "slow",
		"Scenarios": [{"Name": "h", "Workload": "h2", "ThreadCounts": [16], "Repeats": 60}]
	}`
	srv, ts := newTestServer(t, Options{Engine: core.NewEngine()})
	j := submit(t, ts.URL, slowPlan)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	jb, ok := srv.lookup(j.ID)
	if !ok {
		t.Fatal("job evicted during shutdown")
	}
	if state := jb.snapshotState(); state != StateCanceled {
		t.Errorf("after deadline shutdown: state %q, want %q", state, StateCanceled)
	}
}

func TestServeRejectsBadPlans(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: core.NewEngine()})
	for name, body := range map[string]string{
		"not json":         "{nope",
		"no scenarios":     `{"Name": "empty"}`,
		"unknown workload": `{"Scenarios": [{"Name": "x", "Workload": "no-such-benchmark"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/plans", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/plans/p9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// startPipeWorkers runs n RunWorker loops in-process over pipes and
// returns a pool routed at them — the whole shard protocol without
// processes.
func startPipeWorkers(t *testing.T, n int) *WorkerPool {
	t.Helper()
	procs := make([]*workerProc, n)
	for i := range procs {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		go func() {
			if err := RunWorker(context.Background(), reqR, respW); err != nil {
				t.Errorf("worker: %v", err)
			}
			respW.Close()
		}()
		procs[i] = &workerProc{enc: json.NewEncoder(reqW), dec: json.NewDecoder(respR), closer: reqW}
	}
	pool := newPipePool(procs, t.Logf)
	t.Cleanup(func() { pool.Close() })
	return pool
}

func TestWorkerProtocolMatchesInProcess(t *testing.T) {
	spec, _ := workload.Lookup("xalan")
	spec = spec.Scale(0.02)
	pool := startPipeWorkers(t, 3)

	eng := core.NewEngine(core.WithRunner(pool.Run))
	sw, err := eng.Sweep(context.Background(), spec, core.SweepConfig{
		ThreadCounts: []int{2, 4}, Base: vm.Config{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewEngine().Sweep(context.Background(), spec, core.SweepConfig{
		ThreadCounts: []int{2, 4}, Base: vm.Config{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Points {
		if !reflect.DeepEqual(ref.Points[i].Result, sw.Points[i].Result) {
			t.Errorf("point %d: worker-simulated result diverges from in-process", i)
		}
	}
	if cs := eng.CacheStats(); cs.Misses != int64(len(ref.Points)) {
		t.Errorf("sharded sweep recorded %d misses, want %d", cs.Misses, len(ref.Points))
	}
}

// TestServeRePostSnapshotStoreHit pins the warm-start store contract:
// results produced down the snapshot path (sharded workers with their
// per-worker tape cache) must land in the content-addressed store under
// the same fingerprints cold runs would use, so a re-POST of the plan to
// a fresh daemon over the same store is answered entirely from disk —
// zero engine misses, zero simulations.
func TestServeRePostSnapshotStoreHit(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := startPipeWorkers(t, 2)
	eng1 := core.NewEngine(core.WithDiskStore(st1), core.WithRunner(pool.Run))
	srv1, ts1 := newTestServer(t, Options{Engine: eng1, Store: st1})
	j := submit(t, ts1.URL, testPlan)
	_, terminal := consumeSSE(t, ts1.URL, j.ID)
	if terminal.State != StateDone || terminal.Simulated != testPlanPoints {
		t.Fatalf("sharded warm run: %+v", terminal)
	}
	text1 := artifactsText(t, ts1.URL, j.ID)
	// The worker-warm results must render exactly what a fresh in-process
	// engine produces — snapshots change no bytes anywhere.
	if ref := renderCLI(t, testPlan); text1 != ref {
		t.Errorf("worker snapshot-path artifacts diverge from in-process rendering:\n--- daemon ---\n%s\n--- cli ---\n%s", text1, ref)
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-POST to a fresh daemon over the same store directory: every
	// point must be a disk hit under the cold fingerprint.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := core.NewEngine(core.WithDiskStore(st2))
	_, ts2 := newTestServer(t, Options{Engine: eng2, Store: st2})
	j2 := submit(t, ts2.URL, testPlan)
	_, terminal2 := consumeSSE(t, ts2.URL, j2.ID)
	if terminal2.State != StateDone {
		t.Fatalf("re-POST run: %+v", terminal2)
	}
	if terminal2.Simulated != 0 {
		t.Errorf("re-POST simulated %d points, want 0 (all snapshot-path results from disk)", terminal2.Simulated)
	}
	if cs := eng2.CacheStats(); cs.Misses != 0 || cs.DiskHits == 0 {
		t.Errorf("re-POST: CacheStats = %+v, want Misses 0 and DiskHits > 0", cs)
	}
	if text2 := artifactsText(t, ts2.URL, j2.ID); text2 != text1 {
		t.Errorf("artifacts replayed from the store diverge from the snapshot-path originals")
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	pool := startPipeWorkers(t, 1)
	spec, _ := workload.Lookup("xalan")
	spec = spec.Scale(0.02)
	// Invalid config errors inside the worker and must come back as an
	// error, not a broken pipe.
	_, err := pool.Run(context.Background(), spec, vm.Config{Threads: -1, Seed: 7})
	if err == nil {
		t.Fatal("invalid config did not error through the worker")
	}
	// The transport survives an application error: the next run works.
	res, err := pool.Run(context.Background(), spec, vm.Config{Threads: 2, Seed: 7})
	if err != nil || res == nil {
		t.Fatalf("worker unusable after an application error: %v", err)
	}
}

func TestWorkerFailureFallsBackInProcess(t *testing.T) {
	reqR, reqW := io.Pipe()
	respR, _ := io.Pipe()
	// No worker on the far side: the first exchange hangs unless we tear
	// it down, so break it immediately — every run must fall back.
	reqR.Close()
	reqW.Close()
	pool := newPipePool([]*workerProc{{enc: json.NewEncoder(reqW), dec: json.NewDecoder(respR), closer: reqW}}, t.Logf)

	spec, _ := workload.Lookup("xalan")
	spec = spec.Scale(0.02)
	res, err := pool.Run(context.Background(), spec, vm.Config{Threads: 2, Seed: 7})
	if err != nil || res == nil {
		t.Fatalf("broken worker did not fall back: %v", err)
	}
	ref, err := vm.Run(spec, vm.Config{Threads: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("fallback result diverges from direct simulation")
	}
}
