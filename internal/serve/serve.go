// Package serve is the long-running serving layer over the simulation
// engine: an HTTP daemon (cmd/javasimd) that accepts declarative plan
// JSON, executes it on a shared Engine worker pool, streams progress as
// server-sent events, and serves the rendered artifacts — with the
// engine's result cache backed by the content-addressed disk store, so
// a plan POSTed twice (even across daemon restarts) simulates nothing
// the second time.
//
// The API surface (see docs/serving.md for the full reference):
//
//	POST   /v1/plans              submit a plan (202 + job id; 503 while draining)
//	GET    /v1/plans              list jobs
//	GET    /v1/plans/{id}         one job's status
//	DELETE /v1/plans/{id}         cancel a running job
//	GET    /v1/plans/{id}/events  progress as SSE (replays history, then live)
//	GET    /v1/plans/{id}/artifacts  rendered tables (?format=text|json)
//	GET    /v1/stats              engine cache tiers, store counters, job counts
//	GET    /v1/healthz            liveness
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"javasim/internal/core"
	"javasim/internal/store"
)

// Job states.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Options configure a Server.
type Options struct {
	// Engine executes submitted plans. Required.
	Engine *core.Engine
	// Store is the engine's disk tier, if any; Shutdown flushes it so a
	// drained daemon leaves every completed result durable. The server
	// only reports its counters — wiring it into the engine is the
	// caller's job (core.WithDiskStore), since one process may share a
	// store between several engines.
	Store *store.Store
	// MaxJobs bounds concurrently running plans; submissions beyond it
	// get 429. Zero means DefaultMaxJobs.
	MaxJobs int
	// Retain bounds how many finished jobs stay listable before the
	// oldest are evicted. Zero means DefaultRetain.
	Retain int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultMaxJobs bounds concurrently running plans when Options.MaxJobs
// is zero.
const DefaultMaxJobs = 16

// DefaultRetain is the finished-job retention when Options.Retain is
// zero.
const DefaultRetain = 64

// eventBufferCap bounds the per-job replay buffer. A plan produces a few
// events per sweep point, so this comfortably covers realistic matrices;
// beyond it the oldest events are dropped and late SSE subscribers see a
// gap (the id: sequence makes the gap visible).
const eventBufferCap = 65536

// Server multiplexes plan executions over one shared Engine. Create with
// New, mount Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	eng     *core.Engine
	st      *store.Store
	maxJobs int
	retain  int
	logf    func(string, ...any)

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for listing and eviction
	nextID   int
	draining bool

	running sync.WaitGroup
}

// New builds a Server over an engine.
func New(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("serve: Options.Engine is required")
	}
	s := &Server{
		eng:     opts.Engine,
		st:      opts.Store,
		maxJobs: opts.MaxJobs,
		retain:  opts.Retain,
		logf:    opts.Logf,
		jobs:    make(map[string]*job),
	}
	if s.maxJobs <= 0 {
		s.maxJobs = DefaultMaxJobs
	}
	if s.retain <= 0 {
		s.retain = DefaultRetain
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	return s, nil
}

// event is one buffered SSE frame.
type event struct {
	seq  int
	name string
	data []byte
}

// job is one submitted plan's execution record.
type job struct {
	id        string
	plan      string
	submitted time.Time

	cancel context.CancelFunc
	done   chan struct{} // closed when the run goroutine has fully settled

	mu       sync.Mutex
	events   []event
	firstSeq int // seq of events[0] (>0 once the buffer has wrapped)
	nextSeq  int
	changed  chan struct{} // closed and replaced on every append/state change
	state    string
	errMsg   string
	finished time.Time
	result   *core.PlanResult

	simulated atomic.Int64 // runs this job dispatched to the VM
	cached    atomic.Int64 // runs answered from cache tiers or shared flights
}

// append records an SSE frame and wakes subscribers.
func (j *job) append(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, event{seq: j.nextSeq, name: name, data: data})
	j.nextSeq++
	if len(j.events) > eventBufferCap {
		drop := len(j.events) - eventBufferCap
		j.events = j.events[drop:]
		j.firstSeq += drop
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// eventData is the wire form of one engine progress event.
type eventData struct {
	Kind      string `json:"kind"`
	Workload  string `json:"workload,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	VirtualNS int64  `json:"virtual_ns,omitempty"`
	Artifact  string `json:"artifact,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	Plan      string `json:"plan,omitempty"`
	Error     string `json:"error,omitempty"`
}

// observe translates one engine event into the job's SSE stream and
// per-job counters.
func (j *job) observe(ev core.Event) {
	switch ev.Kind {
	case core.RunFinished:
		if ev.Err == nil {
			j.simulated.Add(1)
		}
	case core.RunCached:
		j.cached.Add(1)
	}
	d := eventData{
		Kind: ev.Kind.String(), Workload: ev.Workload, Threads: ev.Threads,
		Seed: ev.Seed, VirtualNS: int64(ev.VirtualTime),
		Artifact: ev.Artifact, Scenario: ev.Scenario, Plan: ev.Plan,
	}
	if ev.Err != nil {
		d.Error = ev.Err.Error()
	}
	j.append(d.Kind, d)
}

// jobJSON is the wire form of a job's status.
type jobJSON struct {
	ID        string     `json:"id"`
	Plan      string     `json:"plan"`
	State     string     `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Simulated int64      `json:"simulated"`
	Cached    int64      `json:"cached"`
	Artifacts int        `json:"artifacts,omitempty"`
}

func (j *job) snapshot() jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := jobJSON{
		ID: j.id, Plan: j.plan, State: j.state, Submitted: j.submitted,
		Error:     j.errMsg,
		Simulated: j.simulated.Load(), Cached: j.cached.Load(),
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	if j.result != nil {
		out.Artifacts = len(j.result.Tables())
	}
	return out
}

// terminalEventName maps a final state to its SSE event name.
func terminalEventName(state string) string { return "job-" + state }

// finish records the job's outcome and emits the terminal SSE event.
func (j *job) finish(pr *core.PlanResult, err error) {
	state := StateDone
	msg := ""
	switch {
	case err == nil:
		// done
	case errors.Is(err, context.Canceled):
		state, msg = StateCanceled, err.Error()
	default:
		state, msg = StateFailed, err.Error()
	}
	j.mu.Lock()
	j.state, j.errMsg, j.result = state, msg, pr
	j.finished = time.Now()
	j.mu.Unlock()
	j.append(terminalEventName(state), j.snapshot())
	close(j.done)
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plans", s.handleSubmit)
	mux.HandleFunc("GET /v1/plans", s.handleList)
	mux.HandleFunc("GET /v1/plans/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/plans/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/plans/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/plans/{id}/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.isDraining()})
	})
	return mux
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxPlanBytes bounds submitted plan bodies.
const maxPlanBytes = 16 << 20

// handleSubmit accepts a plan, validates it, and starts executing it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	plan, err := core.LoadPlan(http.MaxBytesReader(w, r.Body, maxPlanBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new plans")
		return
	}
	runningCount := 0
	for _, j := range s.jobs {
		if j.snapshotState() == StateRunning {
			runningCount++
		}
	}
	if runningCount >= s.maxJobs {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "%d plans already running (limit %d)", runningCount, s.maxJobs)
		return
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        fmt.Sprintf("p%04d", s.nextID),
		plan:      plan.Name,
		submitted: time.Now(),
		cancel:    cancel,
		done:      make(chan struct{}),
		changed:   make(chan struct{}),
		state:     StateRunning,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.running.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.running.Done()
		defer cancel()
		runCtx := core.ContextWithObserver(ctx, core.ObserverFunc(j.observe))
		pr, err := s.eng.RunPlan(runCtx, plan)
		j.finish(pr, err)
		snap := j.snapshot()
		s.logf("serve: job %s (%s) %s: %d simulated, %d cached", j.id, j.plan, snap.State, snap.Simulated, snap.Cached)
	}()

	s.logf("serve: job %s accepted: plan %q, %d scenarios", j.id, plan.Name, len(plan.Scenarios))
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (j *job) snapshotState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	finished := 0
	for _, id := range s.order {
		if s.jobs[id].snapshotState() != StateRunning {
			finished++
		}
	}
	if finished <= s.retain {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if finished > s.retain && s.jobs[id].snapshotState() != StateRunning {
			delete(s.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobJSON, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	<-j.done
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents streams a job's progress as server-sent events: the
// buffered history first (so a subscriber attaching after completion
// still sees the whole run), then live events until the terminal
// job-done / job-failed / job-canceled frame, which ends the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	next := 0 // next sequence number to deliver
	for {
		j.mu.Lock()
		if next < j.firstSeq {
			next = j.firstSeq // buffer wrapped; resume at the oldest retained
		}
		pending := make([]event, len(j.events[next-j.firstSeq:]))
		copy(pending, j.events[next-j.firstSeq:])
		changed := j.changed
		j.mu.Unlock()

		terminal := false
		for _, ev := range pending {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.seq, ev.name, ev.data)
			next = ev.seq + 1
			if strings.HasPrefix(ev.name, "job-") {
				terminal = true
			}
		}
		if len(pending) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// tableJSON is the wire form of one rendered table.
type tableJSON struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// handleArtifacts serves a finished job's rendered tables. ?format=text
// reproduces cmd/javasim -plan's stdout byte for byte (tables joined by
// one blank line), so clients can diff daemon output against the CLI.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	state, result := j.state, j.result
	j.mu.Unlock()
	if state == StateRunning {
		writeError(w, http.StatusConflict, "job %s is still running", j.id)
		return
	}
	if result == nil {
		writeError(w, http.StatusConflict, "job %s %s without artifacts: %s", j.id, state, j.snapshot().Error)
		return
	}
	tables := result.Tables()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i, t := range tables {
			if i > 0 {
				fmt.Fprintln(w)
			}
			t.WriteASCII(w)
		}
		return
	}
	out := make([]tableJSON, len(tables))
	for i, t := range tables {
		out[i] = tableJSON{Title: t.Title, Note: t.Note, Headers: t.Headers, Rows: t.Rows}
	}
	writeJSON(w, http.StatusOK, map[string]any{"plan": result.Plan, "tables": out})
}

// statsJSON is the /v1/stats wire form.
type statsJSON struct {
	Draining bool            `json:"draining"`
	Engine   engineStatsJSON `json:"engine"`
	Store    *storeStatsJSON `json:"store,omitempty"`
	Jobs     map[string]int  `json:"jobs"`
}

type engineStatsJSON struct {
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Shared     int64 `json:"shared"`
	Misses     int64 `json:"misses"`
	DiskWrites int64 `json:"disk_writes"`
	Entries    int   `json:"entries"`
}

type storeStatsJSON struct {
	Dir         string `json:"dir"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Corrupt     int64  `json:"corrupt"`
	Writes      int64  `json:"writes"`
	WriteErrors int64  `json:"write_errors"`
	Entries     int    `json:"entries"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.eng.CacheStats()
	out := statsJSON{
		Draining: s.isDraining(),
		Engine: engineStatsJSON{
			MemoryHits: cs.MemoryHits, DiskHits: cs.DiskHits, Shared: cs.Shared,
			Misses: cs.Misses, DiskWrites: cs.DiskWrites, Entries: cs.Entries,
		},
		Jobs: map[string]int{StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0},
	}
	if s.st != nil {
		st := s.st.Stats()
		out.Store = &storeStatsJSON{
			Dir: s.st.Dir(), Hits: st.Hits, Misses: st.Misses, Corrupt: st.Corrupt,
			Writes: st.Writes, WriteErrors: st.WriteErrors, Entries: s.st.Len(),
		}
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		out.Jobs[j.snapshotState()]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// Shutdown drains the server: new submissions get 503 immediately,
// running jobs get until ctx's deadline to finish (then they are
// canceled and awaited), and the disk store is flushed so every
// completed result is durable before the daemon exits. Safe to call
// once; the http.Server's own Shutdown handles connection draining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	n := 0
	for _, j := range s.jobs {
		if j.snapshotState() == StateRunning {
			n++
		}
	}
	s.mu.Unlock()
	if n > 0 {
		s.logf("serve: draining %d running job(s)", n)
	}

	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("serve: drain deadline reached, canceling running jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
	}
	if s.st != nil {
		if err := s.st.Flush(); err != nil {
			return fmt.Errorf("serve: flush store: %w", err)
		}
	}
	return nil
}
