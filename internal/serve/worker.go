package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"sync"

	"javasim/internal/core"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// Sweep sharding: the daemon can split simulation work across child
// worker processes (javasimd -worker) instead of running everything in
// its own address space. Each worker serves a JSON request/response
// protocol over stdin/stdout — one workRequest in, one workResponse out,
// strictly in order — and the pool routes each run to a worker chosen by
// its result fingerprint, so a given (spec, config) always lands on the
// same process. The pool plugs into the engine as its Runner
// (core.WithRunner): results still flow through the in-memory LRU, the
// singleflight group, and the disk store exactly as local runs do.

// workRequest asks a worker for one simulation.
type workRequest struct {
	Spec   workload.Spec
	Config vm.Config
}

// workResponse carries the result back; exactly one of Result or Error
// is set.
type workResponse struct {
	Result *vm.Result `json:",omitempty"`
	Error  string     `json:",omitempty"`
}

// RunWorker serves the worker side of the shard protocol over r and w
// until r reaches EOF (the parent closing the pipe is the shutdown
// signal) or ctx is canceled. It is what javasimd -worker runs over
// stdin/stdout; tests drive it in-process over pipes.
func RunWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	// Per-worker warm-start cache. Sweep points shard to workers by
	// fingerprint, so one worker serves many points of the same sweep
	// back to back; building the workload tape once per (spec, seed) and
	// replaying it for every later point mirrors Engine.Sweep's
	// in-process warm start. A context snapshot never changes results or
	// fingerprints, so warm worker results land in — and re-POSTed plans
	// hit — exactly the store entries cold runs would write.
	type snapKey struct {
		spec workload.Spec
		seed uint64
	}
	snaps := make(map[snapKey]*vm.Snapshot)
	for {
		var req workRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("serve: worker decode: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		runCtx := ctx
		if !req.Config.DisableSnapshot {
			key := snapKey{spec: req.Spec, seed: req.Config.Canonical().Seed}
			snap, ok := snaps[key]
			if !ok {
				snap, _ = vm.NewSnapshot(req.Spec, req.Config) // nil on bad spec: run cold
				if len(snaps) >= 8 {
					// Cheap pressure valve; concurrent plans rarely
					// interleave more sweeps than this on one worker.
					clear(snaps)
				}
				snaps[key] = snap
			}
			runCtx = vm.ContextWithSnapshot(ctx, snap)
		}
		var resp workResponse
		res, err := vm.RunContext(runCtx, req.Spec, req.Config)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Result = res
		}
		if err := enc.Encode(&resp); err != nil {
			return fmt.Errorf("serve: worker encode: %w", err)
		}
	}
}

// workerProc is one shard: a request/response channel to a worker,
// serialized by its mutex. A transport error marks the proc broken —
// in-flight state is unknowable after a torn response, so the pool
// stops using it and falls back to in-process simulation.
type workerProc struct {
	mu     sync.Mutex
	enc    *json.Encoder
	dec    *json.Decoder
	closer io.Closer // worker's stdin; closing it signals shutdown
	cmd    *exec.Cmd // nil for in-process (test) workers
	broken bool
}

// run performs one request/response exchange.
func (p *workerProc) run(spec workload.Spec, cfg vm.Config) (*vm.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken {
		return nil, errWorkerBroken
	}
	if err := p.enc.Encode(workRequest{Spec: spec, Config: cfg}); err != nil {
		p.broken = true
		return nil, fmt.Errorf("serve: worker send: %w", err)
	}
	var resp workResponse
	if err := p.dec.Decode(&resp); err != nil {
		p.broken = true
		return nil, fmt.Errorf("serve: worker receive: %w", err)
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	if resp.Result == nil {
		p.broken = true
		return nil, errors.New("serve: worker returned neither result nor error")
	}
	return resp.Result, nil
}

var errWorkerBroken = errors.New("serve: worker process is broken")

// WorkerPool shards simulations across worker processes by result
// fingerprint. It implements core.Runner; runs that cannot be shipped
// over the wire (uncacheable ones carrying a trace sink or lock
// profiler) and runs whose worker has failed execute in-process instead,
// so a dying worker degrades throughput, never correctness.
type WorkerPool struct {
	procs []*workerProc
	logf  func(string, ...any)
}

// StartWorkerPool launches n worker processes running bin with args
// (javasimd starts itself with -worker) and returns the pool. Close
// shuts the workers down.
func StartWorkerPool(n int, bin string, args []string, logf func(string, ...any)) (*WorkerPool, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: worker pool size %d", n)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pool := &WorkerPool{logf: logf}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, args...)
		stdin, err := cmd.StdinPipe()
		if err == nil {
			var stdout io.ReadCloser
			stdout, err = cmd.StdoutPipe()
			if err == nil {
				err = cmd.Start()
				if err == nil {
					pool.procs = append(pool.procs, &workerProc{
						enc: json.NewEncoder(stdin), dec: json.NewDecoder(stdout),
						closer: stdin, cmd: cmd,
					})
					continue
				}
			}
		}
		pool.Close()
		return nil, fmt.Errorf("serve: start worker %d: %w", i, err)
	}
	return pool, nil
}

// newPipePool builds a pool over pre-connected in-process transports —
// the test harness for the protocol, with RunWorker on the far side.
func newPipePool(procs []*workerProc, logf func(string, ...any)) *WorkerPool {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &WorkerPool{procs: procs, logf: logf}
}

// Size reports the number of workers (broken ones included).
func (p *WorkerPool) Size() int { return len(p.procs) }

// shard picks the worker for a fingerprint from its leading hex digits,
// so identical runs always land on the same process and its OS page
// cache.
func (p *WorkerPool) shard(fp string) *workerProc {
	v, err := strconv.ParseUint(fp[:8], 16, 64)
	if err != nil {
		return p.procs[0]
	}
	return p.procs[int(v%uint64(len(p.procs)))]
}

// Run implements core.Runner: it ships the run to its shard's worker,
// falling back to in-process simulation when the run is unshippable or
// the worker has failed.
func (p *WorkerPool) Run(ctx context.Context, spec workload.Spec, cfg vm.Config) (*vm.Result, error) {
	fp, ok := core.Fingerprint(spec, cfg)
	if !ok {
		// Uncacheable runs carry side-effecting sinks that cannot cross a
		// process boundary.
		return vm.RunContext(ctx, spec, cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := p.shard(fp).run(spec, cfg)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		p.logf("serve: worker shard failed (%v), simulating %s in process", err, spec.Name)
		return vm.RunContext(ctx, spec, cfg)
	}
	return res, nil
}

// Close shuts every worker down by closing its stdin (RunWorker returns
// on EOF) and waits for the processes to exit.
func (p *WorkerPool) Close() error {
	var first error
	for _, proc := range p.procs {
		if proc.closer != nil {
			if err := proc.closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, proc := range p.procs {
		if proc.cmd != nil {
			if err := proc.cmd.Wait(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
