package javasim_test

import (
	"context"
	"testing"

	"javasim"
)

func TestFacadeRun(t *testing.T) {
	spec, ok := javasim.BenchmarkByName("xalan")
	if !ok {
		t.Fatal("xalan missing")
	}
	res, err := javasim.Run(spec.Scale(0.02), javasim.Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ObjectsAllocated == 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := javasim.Benchmarks()
	if len(bs) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(bs))
	}
	scalable := 0
	for _, b := range bs {
		if javasim.PaperScalable(b.Name) {
			scalable++
		}
	}
	if scalable != 3 {
		t.Errorf("scalable count = %d, want 3", scalable)
	}
	if _, ok := javasim.BenchmarkByName("nope"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestFacadeSweepAndSuite(t *testing.T) {
	spec, _ := javasim.BenchmarkByName("jython")
	sw, err := javasim.RunSweep(spec.Scale(0.02), javasim.SweepConfig{
		ThreadCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Errorf("points = %d", len(sw.Points))
	}
	suite := javasim.NewSuite(javasim.ExperimentConfig{
		ThreadCounts: []int{2, 4},
		Scale:        0.02,
	})
	tb, err := suite.Fig1a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("fig1a rows = %d", len(tb.Rows))
	}
}

func TestFacadeLockProfiler(t *testing.T) {
	spec, _ := javasim.BenchmarkByName("h2")
	prof := javasim.NewLockProfiler()
	_, err := javasim.Run(spec.Scale(0.02), javasim.Config{Threads: 4, Seed: 1, LockProfiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Summary().Acquisitions == 0 {
		t.Error("profiler saw nothing")
	}
}
