package javasim_test

import (
	"context"
	"os"
	"testing"

	"javasim"
)

func TestFacadeRun(t *testing.T) {
	spec, ok := javasim.LookupWorkload("xalan")
	if !ok {
		t.Fatal("xalan missing")
	}
	res, err := javasim.Run(spec.Scale(0.02), javasim.Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ObjectsAllocated == 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := javasim.PaperBenchmarks()
	if len(bs) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(bs))
	}
	scalable := 0
	for _, b := range bs {
		if javasim.PaperScalable(b.Name) {
			scalable++
		}
	}
	if scalable != 3 {
		t.Errorf("scalable count = %d, want 3", scalable)
	}
	if _, ok := javasim.LookupWorkload("nope"); ok {
		t.Error("unknown benchmark found")
	}
	// The deprecated accessors stay wired to the registry.
	if got := javasim.Benchmarks(); len(got) != 6 || got[0].Name != bs[0].Name {
		t.Errorf("deprecated Benchmarks() diverged from PaperBenchmarks()")
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := javasim.WorkloadNames()
	if len(names) < 7 || names[0] != "sunflow" {
		t.Fatalf("registry names = %v", names)
	}
	if _, ok := javasim.LookupWorkload("server"); !ok {
		t.Error("server extension not registered")
	}
	custom, _ := javasim.LookupWorkload("xalan")
	custom.Name = "facade-custom"
	if err := javasim.RegisterWorkload(custom); err != nil {
		t.Fatal(err)
	}
	if err := javasim.RegisterWorkload(custom); err == nil {
		t.Error("duplicate registration succeeded")
	}
	found := false
	for _, s := range javasim.Workloads() {
		if s.Name == "facade-custom" {
			found = true
		}
	}
	if !found {
		t.Error("registered workload missing from Workloads()")
	}
}

// TestFacadePlanFile executes the repository's demo plan file end to end
// — the same file `cmd/javasim -plan testdata/plan.json` runs.
func TestFacadePlanFile(t *testing.T) {
	f, err := os.Open("testdata/plan.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := javasim.LoadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scenarios) < 4 {
		t.Fatalf("scenarios = %d", len(plan.Scenarios))
	}
	eng := javasim.NewEngine()
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Scenario("xalan") == nil || pr.Scenario("custom-analytics") == nil {
		t.Fatal("scenario results missing")
	}
	if len(pr.Reports) != 3 {
		t.Errorf("reports = %d, want 3", len(pr.Reports))
	}
	if got := len(pr.Tables()); got != 6 {
		t.Errorf("tables = %d, want 6 (3 scenario outputs + 3 reports)", got)
	}
	if reps := pr.Scenario("xalan-repeated").Sweeps; len(reps) != 3 {
		t.Errorf("repeat sweeps = %d, want 3", len(reps))
	}
}

func TestFacadeSweepAndSuite(t *testing.T) {
	spec, _ := javasim.LookupWorkload("jython")
	sw, err := javasim.RunSweep(spec.Scale(0.02), javasim.SweepConfig{
		ThreadCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Errorf("points = %d", len(sw.Points))
	}
	suite := javasim.NewSuite(javasim.ExperimentConfig{
		ThreadCounts: []int{2, 4},
		Scale:        0.02,
	})
	tb, err := suite.Fig1a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("fig1a rows = %d", len(tb.Rows))
	}
}

func TestFacadeLockProfiler(t *testing.T) {
	spec, _ := javasim.LookupWorkload("h2")
	prof := javasim.NewLockProfiler()
	_, err := javasim.Run(spec.Scale(0.02), javasim.Config{Threads: 4, Seed: 1, LockProfiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Summary().Acquisitions == 0 {
		t.Error("profiler saw nothing")
	}
}
