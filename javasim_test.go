package javasim_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"javasim"
)

func TestFacadeRun(t *testing.T) {
	spec, ok := javasim.LookupWorkload("xalan")
	if !ok {
		t.Fatal("xalan missing")
	}
	eng := javasim.NewEngine()
	res, err := eng.Run(context.Background(), spec.Scale(0.02), javasim.Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ObjectsAllocated == 0 {
		t.Errorf("degenerate result %+v", res)
	}
	if res.LockPolicy != javasim.LockPolicyFIFO || res.Placement != javasim.PlacementAffinity {
		t.Errorf("default run labeled %s/%s, want fifo/affinity", res.LockPolicy, res.Placement)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := javasim.PaperBenchmarks()
	if len(bs) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(bs))
	}
	scalable := 0
	for _, b := range bs {
		if javasim.PaperScalable(b.Name) {
			scalable++
		}
	}
	if scalable != 3 {
		t.Errorf("scalable count = %d, want 3", scalable)
	}
	if _, ok := javasim.LookupWorkload("nope"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := javasim.WorkloadNames()
	if len(names) < 7 || names[0] != "sunflow" {
		t.Fatalf("registry names = %v", names)
	}
	if _, ok := javasim.LookupWorkload("server"); !ok {
		t.Error("server extension not registered")
	}
	custom, _ := javasim.LookupWorkload("xalan")
	custom.Name = "facade-custom"
	// The registry is process-global: tolerate the leftover from a
	// previous in-process run (go test -count=2).
	if err := javasim.RegisterWorkload(custom); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := javasim.RegisterWorkload(custom); err == nil {
		t.Error("duplicate registration succeeded")
	}
	found := false
	for _, s := range javasim.Workloads() {
		if s.Name == "facade-custom" {
			found = true
		}
	}
	if !found {
		t.Error("registered workload missing from Workloads()")
	}
}

func TestFacadePolicyRegistries(t *testing.T) {
	locks := javasim.LockPolicyNames()
	if len(locks) < 4 || locks[0] != javasim.LockPolicyFIFO || locks[3] != javasim.LockPolicyRestricted {
		t.Fatalf("lock policies = %v", locks)
	}
	places := javasim.PlacementNames()
	if len(places) < 3 || places[0] != javasim.PlacementAffinity {
		t.Fatalf("placements = %v", places)
	}
	if err := javasim.RegisterLockPolicy(javasim.LockPolicyFIFO, func() javasim.LockPolicy {
		return javasim.RestrictedPolicy(2)
	}); err == nil {
		t.Error("duplicate lock-policy registration succeeded")
	}
	if err := javasim.RegisterPlacement(javasim.PlacementAffinity, nil); err == nil {
		t.Error("duplicate placement registration succeeded")
	}

	// A tuned custom policy registers under its own name and is then
	// selectable like a built-in. The registry is process-global, so a
	// repeated in-process run (go test -count=2) finds it already there.
	err := javasim.RegisterLockPolicy("facade-spin-10us", func() javasim.LockPolicy {
		return javasim.SpinThenParkPolicy(10 * javasim.Microsecond)
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	spec, _ := javasim.LookupWorkload("xalan")
	eng := javasim.NewEngine()
	res, err := eng.Run(context.Background(), spec.Scale(0.02),
		javasim.Config{Threads: 4, Seed: 1, LockPolicy: "facade-spin-10us"})
	if err != nil {
		t.Fatal(err)
	}
	if res.LockPolicy != "facade-spin-10us" {
		t.Errorf("run labeled %q", res.LockPolicy)
	}
}

// TestFacadePlanFile executes the repository's demo plan file end to end
// — the same file `cmd/javasim -plan testdata/plan.json` runs.
func TestFacadePlanFile(t *testing.T) {
	f, err := os.Open("testdata/plan.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := javasim.LoadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scenarios) < 4 {
		t.Fatalf("scenarios = %d", len(plan.Scenarios))
	}
	eng := javasim.NewEngine()
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Scenario("xalan") == nil || pr.Scenario("custom-analytics") == nil {
		t.Fatal("scenario results missing")
	}
	if len(pr.Reports) != 3 {
		t.Errorf("reports = %d, want 3", len(pr.Reports))
	}
	if got := len(pr.Tables()); got != 6 {
		t.Errorf("tables = %d, want 6 (3 scenario outputs + 3 reports)", got)
	}
	if reps := pr.Scenario("xalan-repeated").Sweeps; len(reps) != 3 {
		t.Errorf("repeat sweeps = %d, want 3", len(reps))
	}
}

// TestFacadePolicyPlanFile executes the lock-policy ablation plan — four
// disciplines over the server workload — and asserts the Dice & Kogan
// effect the redesign exists to surface: the restricted policy shows
// lower contention growth than fifo at the highest thread count, and the
// compare report labels the modified column with its policy.
func TestFacadePolicyPlanFile(t *testing.T) {
	f, err := os.Open("testdata/policies.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := javasim.LoadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4 (one per policy)", len(plan.Scenarios))
	}
	eng := javasim.NewEngine()
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	sweepOf := func(name string) *javasim.Sweep {
		sc := pr.Scenario(name)
		if sc == nil {
			t.Fatalf("scenario %q missing", name)
		}
		return sc.Sweep()
	}
	fifo, restricted := sweepOf("server-fifo"), sweepOf("server-restricted")
	fifoLast := fifo.Points[len(fifo.Points)-1].Result
	restrLast := restricted.Points[len(restricted.Points)-1].Result
	if restrLast.LockContentions >= fifoLast.LockContentions {
		t.Errorf("restricted contentions %d >= fifo %d at %d threads",
			restrLast.LockContentions, fifoLast.LockContentions, fifoLast.Threads)
	}
	fg := fifo.ComputeFactors().ContentionGrowth
	rg := restricted.ComputeFactors().ContentionGrowth
	if rg >= fg {
		t.Errorf("restricted ContentionGrowth %.2fx >= fifo %.2fx", rg, fg)
	}

	// The analytic cross-check the plan's usl-by-policy report makes: the
	// fitted USL contention coefficient must rank the policies the same
	// way the raw contention counters do.
	fifoFit, err := fifo.FitUSL()
	if err != nil {
		t.Fatal(err)
	}
	restrFit, err := restricted.FitUSL()
	if err != nil {
		t.Fatal(err)
	}
	if rs, fs := restrFit.Best().Sigma, fifoFit.Best().Sigma; rs >= fs {
		t.Errorf("restricted fitted sigma %.4f >= fifo %.4f", rs, fs)
	}

	var compare, uslTable *javasim.Table
	for _, tb := range pr.Reports {
		if strings.Contains(tb.Title, "Concurrency restriction") {
			compare = tb
		}
		if strings.Contains(tb.Title, "USL scalability fit") {
			uslTable = tb
		}
	}
	if compare == nil {
		t.Fatal("compare report missing")
	}
	if compare.Headers[2] != "modified [restricted]" {
		t.Errorf("compare header = %q, want policy label", compare.Headers[2])
	}
	if uslTable == nil {
		t.Fatal("usl-by-policy report missing")
	}
	if len(uslTable.Rows) != 4 || uslTable.Headers[2] != "sigma" {
		t.Errorf("usl table shape: %d rows, header[2]=%q; want 4 rows with a sigma column",
			len(uslTable.Rows), uslTable.Headers[2])
	}
}

func TestFacadeSweepAndSuite(t *testing.T) {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("jython")
	sw, err := eng.Sweep(context.Background(), spec.Scale(0.02), javasim.SweepConfig{
		ThreadCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Errorf("points = %d", len(sw.Points))
	}
	suite := eng.Suite(javasim.ExperimentConfig{
		ThreadCounts: []int{2, 4},
		Scale:        0.02,
	})
	tb, err := suite.Fig1a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("fig1a rows = %d", len(tb.Rows))
	}
}

func TestFacadeLockProfiler(t *testing.T) {
	spec, _ := javasim.LookupWorkload("h2")
	prof := javasim.NewLockProfiler()
	eng := javasim.NewEngine()
	_, err := eng.Run(context.Background(), spec.Scale(0.02),
		javasim.Config{Threads: 4, Seed: 1, LockProfiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Summary().Acquisitions == 0 {
		t.Error("profiler saw nothing")
	}
}
